package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with stdout redirected to a pipe and returns what it
// wrote. Stderr (timings, notes) is silenced: the contract under test is
// that *stdout* is byte-identical across -parallel values.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = wr, devnull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
	}()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := fn()
	wr.Close()
	out := <-done
	r.Close()
	return out, runErr
}

// TestStdoutParityAcrossParallelism locks in byte-identical stdout at any
// -parallel value: the exhaustive DFS is sequential and the stress results
// are merged in seed order, so only timings (on stderr) may vary.
func TestStdoutParityAcrossParallelism(t *testing.T) {
	args := []string{"-alg", "rspin", "-n", "2", "-w", "8", "-crashes", "1", "-max", "20000", "-stress", "100"}
	one, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "1"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 1: %v", err)
	}
	eight, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "8"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 8: %v", err)
	}
	if one != eight {
		t.Fatalf("stdout differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", one, eight)
	}
	if len(one) == 0 {
		t.Fatal("no output captured")
	}
}

// TestJSONParityAcrossParallelism extends the stdout contract to -json: the
// whole document, including the search statistics, must be byte-identical at
// any -parallel value.
func TestJSONParityAcrossParallelism(t *testing.T) {
	args := []string{"-alg", "yatree", "-n", "2", "-w", "8", "-crashes", "1", "-max", "20000", "-stress", "50", "-json"}
	one, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "1"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 1: %v", err)
	}
	eight, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "8"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 8: %v", err)
	}
	if one != eight {
		t.Fatalf("JSON differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", one, eight)
	}
}

// TestJSONReportShape decodes the -json document and checks the stateful
// search statistics made it through with sane values.
func TestJSONReportShape(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-alg", "yatree", "-n", "2", "-crashes", "1", "-max", "20000", "-stress", "0", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc jsonReport
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	if !doc.OK || doc.Algorithm != "yatree" || !doc.Memo || !doc.POR {
		t.Fatalf("unexpected report header: %+v", doc)
	}
	ex := doc.Exhaustive
	if ex.StatesVisited == 0 || ex.Complete == 0 {
		t.Fatalf("missing search statistics: %+v", ex)
	}
	if ex.Truncated || ex.DepthTruncated != 0 {
		t.Fatalf("unexpected truncation on a completing search: %+v", ex)
	}
	if ex.MachineSteps < ex.ReplaySteps || ex.MachineSteps == 0 {
		t.Fatalf("implausible step accounting: %+v", ex)
	}
	if doc.Stress != nil {
		t.Fatal("stress report present despite -stress 0")
	}
}

// TestJSONReportScaleOutShape covers the scale-out flags end to end: the
// -json document must carry the new header fields and counters, and a
// -resume of a finished checkpoint must reproduce the document byte for
// byte without re-exploring.
func TestJSONReportScaleOutShape(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-alg", "rspin", "-n", "2", "-crashes", "1", "-max", "20000", "-stress", "0",
		"-symmetry", "-sharedset", "-wave", "1", "-spilldir", dir, "-membudget", "4096", "-json"}
	out, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	var doc jsonReport
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	if !doc.Symmetry || !doc.SharedSet || doc.WaveSize != 1 || !doc.Memo {
		t.Fatalf("scale-out header fields wrong: %+v", doc)
	}
	ex := doc.Exhaustive
	if ex.Waves == 0 || ex.StatesVisited == 0 {
		t.Fatalf("scale-out counters missing: %+v", ex)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatalf("no checkpoint manifest written: %v", err)
	}
	resumed, err := captureStdout(t, func() error { return run(append(args, "-resume")) })
	if err != nil {
		t.Fatalf("-resume: %v", err)
	}
	if resumed != out {
		t.Fatalf("-resume of a finished checkpoint differs:\n--- original ---\n%s\n--- resumed ---\n%s", out, resumed)
	}
	raw := map[string]json.RawMessage{}
	if err := json.Unmarshal([]byte(out), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"symmetry", "sharedset", "wave"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("-json document missing %q key:\n%s", key, out)
		}
	}
}

// TestTextOutputSurfacesScaleOutStats: -sharedset adds the wave/shared-prune
// line to the text report and the header reflects -symmetry.
func TestTextOutputSurfacesScaleOutStats(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-alg", "rspin", "-n", "2", "-crashes", "1", "-max", "20000", "-stress", "0",
			"-symmetry", "-sharedset", "-wave", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"symmetry=true", "shared: ", "waves", "states: ", "OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestTextOutputSurfacesSearchStats: the text report must show the
// depth-truncation count and, when memoizing, the state statistics; with the
// reductions off the state line disappears and the run still passes.
func TestTextOutputSurfacesSearchStats(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-alg", "ticket", "-n", "2", "-crashes", "0", "-stress", "0"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"memo=true por=true", "depth-truncated prefixes: 0", "states: ", "steps: ", "OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	plain, err := captureStdout(t, func() error {
		return run([]string{"-alg", "ticket", "-n", "2", "-crashes", "0", "-stress", "0", "-memo=false", "-por=false"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "states: ") {
		t.Fatalf("plain mode printed memo statistics:\n%s", plain)
	}
	if !strings.Contains(plain, "memo=false por=false") || !strings.Contains(plain, "OK") {
		t.Fatalf("plain run output unexpected:\n%s", plain)
	}
}
