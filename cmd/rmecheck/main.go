// Command rmecheck model-checks a mutual exclusion algorithm: bounded
// exhaustive interleaving search (optionally branching over crash steps) and
// randomized stress, reporting mutual exclusion or progress failures with
// the schedules that produced them.
//
// Usage:
//
//	rmecheck [-alg watree] [-n 2] [-w 8] [-model cc] [-crashes 1] [-max 50000] [-stress 200] [-seed S] [-parallel N]
//	         [-memo] [-por] [-symmetry] [-snapshot K] [-maxstates N] [-json]
//	         [-sharedset] [-wave K] [-maxwaves K] [-membudget BYTES] [-spilldir DIR] [-resume]
//	         [-trace FILE] [-traceformat jsonl|chrome] [-top N]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-heartbeat DUR] [-metrics FILE] [-debugaddr ADDR]
//	         [-ledger runs/ledger.jsonl] [-runlabel LABEL] [-version]
//
// -ledger appends a perf-ledger manifest (semantic config digest plus the
// run's deterministic counters) after a clean check, for cross-run
// regression gating via cmd/rmereport.
//
// -heartbeat prints live search progress (states or schedules per second,
// memo-hit and replay ratios, ETA against the state budget) to stderr;
// -metrics appends JSONL metric snapshots; -debugaddr serves /metrics,
// /debug/vars and /debug/pprof while the search runs. All three are strictly
// observational: stdout stays byte-identical with them on or off.
//
// The exhaustive search runs stateful by default: visited-state memoization
// (-memo) and sleep-set partial-order reduction (-por) prune redundant
// interleavings, and a checkpoint stack (-snapshot) bounds backtracking
// replay. Disable both (-memo=false -por=false) to enumerate raw schedules
// like the reference explorer. -json emits one JSON report on stdout instead
// of text; both are byte-identical at any -parallel value.
//
// Three scale-out reductions stack on top for large configurations:
// -symmetry canonicalizes state keys over the algorithm's declared process
// symmetry group (algorithms with no declaration are unaffected); -sharedset
// shares visited sets across root branches in waves of -wave branches
// (deterministic at any -parallel); -membudget/-spilldir bound resident
// visited-set memory by spilling sealed waves to sorted run files, and with
// -spilldir every wave is checkpointed so an interrupted run can continue
// with -resume (the resumed Result is byte-identical to an uninterrupted
// run). -maxwaves stops a run after K waves to stage long certifications.
//
// The checker itself runs trace-free (it replays millions of branches);
// -trace exports the step-level story of the crash-free round-robin
// reference run of the checked configuration, and -top prints its hottest
// cells/procs to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rme/internal/algorithms/clh"
	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/qword"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/check"
	"rme/internal/cliutil"
	"rme/internal/mutex"
	"rme/internal/perflog"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
	"rme/internal/word"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmecheck:", err)
		os.Exit(1)
	}
}

// searchReport is the JSON shape of one search phase's Result.
type searchReport struct {
	Complete       int      `json:"complete"`
	Truncated      bool     `json:"truncated"`
	DepthTruncated int      `json:"depth_truncated"`
	StatesVisited  int      `json:"states_visited"`
	StatesPruned   int      `json:"states_pruned"`
	SharedPruned   int      `json:"shared_pruned"`
	SleepPruned    int      `json:"sleep_pruned"`
	Waves          int      `json:"waves"`
	MachineSteps   int64    `json:"machine_steps"`
	ReplaySteps    int64    `json:"replay_steps"`
	Violations     []string `json:"violations,omitempty"`
	Deadlocks      []string `json:"deadlocks,omitempty"`
}

func toReport(res *check.Result) searchReport {
	return searchReport{
		Complete:       res.Complete,
		Truncated:      res.Truncated,
		DepthTruncated: res.DepthTruncated,
		StatesVisited:  res.StatesVisited,
		StatesPruned:   res.StatesPruned,
		SharedPruned:   res.SharedPruned,
		SleepPruned:    res.SleepPruned,
		Waves:          res.Waves,
		MachineSteps:   res.MachineSteps,
		ReplaySteps:    res.ReplaySteps,
		Violations:     res.Violations,
		Deadlocks:      res.Deadlocks,
	}
}

// jsonReport is the complete -json document.
type jsonReport struct {
	Algorithm  string             `json:"algorithm"`
	Procs      int                `json:"procs"`
	Width      int                `json:"width"`
	Model      string             `json:"model"`
	Crashes    int                `json:"crashes"`
	Memo       bool               `json:"memo"`
	POR        bool               `json:"por"`
	Symmetry   bool               `json:"symmetry"`
	SharedSet  bool               `json:"sharedset"`
	WaveSize   int                `json:"wave,omitempty"`
	Exhaustive searchReport       `json:"exhaustive"`
	Stress     *searchReport      `json:"stress,omitempty"`
	OK         bool               `json:"ok"`
	Provenance perflog.Provenance `json:"provenance"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmecheck", flag.ContinueOnError)
	algName := fs.String("alg", "watree", "algorithm: tas, ticket, mcs, clh, tournament, grlock, rspin, watree")
	n := fs.Int("n", 2, "number of processes")
	w := fs.Int("w", 8, "word size in bits")
	modelName := fs.String("model", "cc", "cost model: cc or dsm")
	crashes := fs.Int("crashes", 1, "crash steps per process to branch over (recoverable algorithms)")
	maxSched := fs.Int("max", 50_000, "exhaustive schedule cap")
	stressN := fs.Int("stress", 200, "randomized stress seeds (0 to skip)")
	parallel := fs.Int("parallel", 0, "search/stress workers (0 = GOMAXPROCS); results are identical at any value")
	seed := fs.Int64("seed", 0, "offset for the stress schedule seeds (0 = the default sample)")
	memo := fs.Bool("memo", true, "memoize visited canonical states (fingerprint pruning)")
	por := fs.Bool("por", true, "sleep-set partial-order reduction over step footprints")
	symmetry := fs.Bool("symmetry", false, "canonicalize state keys over the algorithm's declared process symmetry group")
	snapshot := fs.Int("snapshot", check.DefaultSnapshotInterval, "checkpoint spacing for backtrack restores (negative = replay from the root)")
	maxStates := fs.Int("maxstates", check.DefaultMaxStates, "visited-state cap for -memo")
	sharedSet := fs.Bool("sharedset", false, "share visited sets across root branches in sealed waves (implies -memo)")
	wave := fs.Int("wave", check.DefaultWaveSize, "root branches per wave for -sharedset")
	maxWaves := fs.Int("maxwaves", 0, "stop the -sharedset search after this many waves (0 = run all; pairs with -spilldir/-resume)")
	memBudget := fs.Int64("membudget", 0, "resident bytes allowed for sealed shared sets before spilling to disk (0 = unbounded)")
	spillDir := fs.String("spilldir", "", "directory for spilled waves and the resume checkpoint")
	resume := fs.Bool("resume", false, "continue a checkpointed -sharedset run from -spilldir")
	jsonOut := fs.Bool("json", false, "emit one JSON report on stdout instead of text")
	tracePath := fs.String("trace", "", "export a step-level trace of the crash-free reference run to this file")
	traceFormat := fs.String("traceformat", "jsonl", "trace encoding: jsonl or chrome (Perfetto)")
	top := fs.Int("top", 0, "print the N hottest cells/procs of the reference run to stderr (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	tele := cliutil.TelemetryFlags(fs)
	ledger := cliutil.LedgerFlags(fs)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("rmecheck"))
		return nil
	}
	if _, err := trace.ParseFormat(*traceFormat); err != nil {
		return err
	}
	stopCPU, err := cliutil.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	stopTele, err := tele.Start("check", telemetryView(*memo || *sharedSet, *sharedSet))
	if err != nil {
		return err
	}
	defer stopTele()

	algs := map[string]mutex.Algorithm{
		"tas": tas.New(), "ticket": ticket.New(), "mcs": mcs.New(), "clh": clh.New(),
		"tournament": tournament.New(), "yatree": yatree.New(), "grlock": grlock.New(),
		"rspin": rspin.New(), "watree": watree.New(), "qword": qword.New(),
	}
	alg, ok := algs[strings.ToLower(*algName)]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algName)
	}
	model := sim.CC
	if strings.EqualFold(*modelName, "dsm") {
		model = sim.DSM
	}
	cfg := check.Config{
		Session: mutex.Config{
			Procs: *n, Width: word.Width(*w), Model: model, Algorithm: alg,
		},
		MaxSchedules:     *maxSched,
		CrashesPerProc:   *crashes,
		Parallel:         *parallel,
		Seed:             *seed,
		Memo:             *memo,
		POR:              *por,
		Symmetry:         *symmetry,
		SnapshotInterval: *snapshot,
		MaxStates:        *maxStates,
		SharedVisited:    *sharedSet,
		WaveSize:         *wave,
		MaxWaves:         *maxWaves,
		MemBudget:        *memBudget,
		SpillDir:         *spillDir,
		Resume:           *resume,
		Telemetry:        tele.Registry(),
	}

	if *tracePath != "" || *top > 0 {
		if err := traceReference(cfg.Session, *tracePath, *traceFormat, *top); err != nil {
			return err
		}
	}

	// The semantic configuration for the perf ledger: every flag that shapes
	// the Result (including -snapshot, which moves work between machine and
	// replay steps), never the execution layout (-parallel), spill plumbing
	// (-membudget, -spilldir, -resume — results are byte-identical with or
	// without spilling), or observability flags.
	newManifest := func(exh, stress *check.Result, wallMS float64) *perflog.Manifest {
		m := perflog.New("rmecheck")
		m.SetConfig("alg", alg.Name())
		m.SetConfig("n", *n)
		m.SetConfig("w", *w)
		m.SetConfig("model", model)
		m.SetConfig("crashes", *crashes)
		m.SetConfig("max", *maxSched)
		m.SetConfig("stress", *stressN)
		m.SetConfig("seed", *seed)
		m.SetConfig("memo", *memo)
		m.SetConfig("por", *por)
		m.SetConfig("symmetry", *symmetry)
		m.SetConfig("snapshot", *snapshot)
		m.SetConfig("maxstates", *maxStates)
		m.SetConfig("sharedset", *sharedSet)
		m.SetConfig("wave", *wave)
		m.SetConfig("maxwaves", *maxWaves)
		resultCounters(m, "", exh)
		if stress != nil {
			resultCounters(m, "stress_", stress)
		}
		m.Sample("wall_ms", wallMS)
		return m
	}

	checkStart := time.Now()
	if *jsonOut {
		exh, stress, err := runJSON(cfg, alg.Name(), model, *crashes, *stressN, *sharedSet, *wave)
		// The heap profile is written even when the check failed: profiling a
		// run that found a violation is still profiling.
		if herr := cliutil.WriteHeapProfile(*memProfile); err == nil {
			err = herr
		}
		if err != nil {
			return err
		}
		wall := float64(time.Since(checkStart).Microseconds()) / 1000
		return ledger.Emit(tele.Registry(), newManifest(exh, stress, wall))
	}

	fmt.Printf("exhaustive: %s n=%d w=%d model=%s crashes<=%d memo=%v por=%v symmetry=%v\n",
		alg.Name(), *n, *w, model, *crashes, *memo, *por, *symmetry)
	start := time.Now()
	res, err := check.Exhaustive(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  %d complete schedules (truncated: %v, depth-truncated prefixes: %d)\n",
		res.Complete, res.Truncated, res.DepthTruncated)
	if *memo || *sharedSet {
		fmt.Printf("  states: %d visited, %d revisits pruned, %d sleep-set skips\n",
			res.StatesVisited, res.StatesPruned, res.SleepPruned)
	}
	if *sharedSet {
		fmt.Printf("  shared: %d waves, %d cross-branch prunes\n", res.Waves, res.SharedPruned)
	}
	fmt.Printf("  steps: %d machine, %d replay\n", res.MachineSteps, res.ReplaySteps)
	// Timing goes to stderr: stdout is byte-identical at any -parallel value.
	fmt.Fprintf(os.Stderr, "  (exhaustive in %v)\n", time.Since(start).Round(time.Millisecond))
	if err := report(res); err != nil {
		return err
	}

	var stressRes *check.Result
	if *stressN > 0 {
		fmt.Printf("stress: %d random schedules with crash injection\n", *stressN)
		sres, err := check.Stress(cfg, *stressN, 0.05)
		if err != nil {
			return err
		}
		stressRes = sres
		fmt.Printf("  %d complete\n", sres.Complete)
		if err := report(sres); err != nil {
			return err
		}
	}
	fmt.Println("OK")
	if err := cliutil.WriteHeapProfile(*memProfile); err != nil {
		return err
	}
	wall := float64(time.Since(checkStart).Microseconds()) / 1000
	return ledger.Emit(tele.Registry(), newManifest(res, stressRes, wall))
}

// resultCounters records one search phase's deterministic counters, prefixed
// so exhaustive and stress phases share a manifest without colliding.
func resultCounters(m *perflog.Manifest, prefix string, res *check.Result) {
	m.Counter(prefix+"complete", int64(res.Complete))
	m.Counter(prefix+"depth_truncated", int64(res.DepthTruncated))
	m.Counter(prefix+"states_visited", int64(res.StatesVisited))
	m.Counter(prefix+"states_pruned", int64(res.StatesPruned))
	m.Counter(prefix+"shared_pruned", int64(res.SharedPruned))
	m.Counter(prefix+"sleep_pruned", int64(res.SleepPruned))
	m.Counter(prefix+"waves", int64(res.Waves))
	m.Counter(prefix+"machine_steps", res.MachineSteps)
	m.Counter(prefix+"replay_steps", res.ReplaySteps)
	truncated := int64(0)
	if res.Truncated {
		truncated = 1
	}
	m.Counter(prefix+"truncated", truncated)
}

// telemetryView is the checker's heartbeat layout: with memoization the
// search progresses in visited states against the state budget; without it,
// in complete schedules against the schedule cap. Either way the ratios
// expose the prune and replay economics of the stateful explorer. Shared-set
// runs additionally surface wave progress and the cross-branch share of the
// prune traffic, so a long spill-backed certification is watchable live.
func telemetryView(memo, sharedSet bool) telemetry.View {
	v := telemetry.View{
		Progress: "check_schedules_complete",
		Target:   "check_max_schedules",
		Show:     []string{"check_frontier_depth"},
		Ratios: []telemetry.Ratio{
			{Label: "replay", Num: "check_replay_steps", Den: []string{"check_machine_steps"}},
		},
		UtilBusy:    "engine_busy_ns",
		UtilWorkers: "engine_workers",
	}
	if memo {
		v.Progress = "check_states_visited"
		v.Target = "check_max_states"
		v.Ratios = append([]telemetry.Ratio{{
			Label: "memo_hit",
			Num:   "check_states_pruned",
			Den:   []string{"check_states_visited", "check_states_pruned"},
		}}, v.Ratios...)
	}
	if sharedSet {
		v.Show = append(v.Show, "check_waves_done", "check_spill_bytes")
		v.Ratios = append(v.Ratios, telemetry.Ratio{
			Label: "shared_hit",
			Num:   "check_shared_pruned",
			Den:   []string{"check_states_pruned"},
		})
	}
	return v
}

// runJSON runs the same phases as the text path but emits one JSON document,
// returning both phases' results for the perf ledger.
func runJSON(cfg check.Config, algName string, model sim.Model, crashes, stress int, sharedSet bool, wave int) (*check.Result, *check.Result, error) {
	res, err := check.Exhaustive(cfg)
	if err != nil {
		return nil, nil, err
	}
	doc := jsonReport{
		Algorithm: algName, Procs: cfg.Session.Procs, Width: int(cfg.Session.Width),
		Model: model.String(), Crashes: crashes, Memo: cfg.Memo || sharedSet, POR: cfg.POR,
		Symmetry: cfg.Symmetry, SharedSet: sharedSet,
		Exhaustive: toReport(res), OK: res.Ok(), Provenance: perflog.Build(),
	}
	if sharedSet {
		doc.WaveSize = wave
	}
	firstErr := res.Err()
	var stressRes *check.Result
	if stress > 0 {
		sres, err := check.Stress(cfg, stress, 0.05)
		if err != nil {
			return nil, nil, err
		}
		stressRes = sres
		sr := toReport(sres)
		doc.Stress = &sr
		doc.OK = doc.OK && sres.Ok()
		if firstErr == nil {
			firstErr = sres.Err()
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, nil, err
	}
	return res, stressRes, firstErr
}

// traceReference runs the checked configuration crash-free round-robin on a
// traced machine and exports/summarizes its event stream.
func traceReference(cfg mutex.Config, path, format string, top int) error {
	cfg.NoTrace = false
	s, err := mutex.NewSession(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.RunRoundRobin(); err != nil {
		return err
	}
	runs := []trace.Run{{
		Label: "reference " + cfg.Algorithm.Name(), Procs: cfg.Procs, Model: cfg.Model,
		Events: append([]sim.Event(nil), s.Machine().Trace()...),
	}}
	cliutil.SummarizeTrace(os.Stderr, runs, cfg.Model, top)
	return cliutil.ExportTrace(path, format, runs)
}

func report(res *check.Result) error {
	for _, v := range res.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	for _, d := range res.Deadlocks {
		fmt.Printf("  DEADLOCK:  %s\n", d)
	}
	return res.Err()
}
