package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"rme/internal/perflog"
)

// ledgerRun runs the checker with -ledger into a fresh file and returns the
// single manifest it appended.
func ledgerRun(t *testing.T, extra ...string) *perflog.Manifest {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	args := append([]string{
		"-alg", "tas", "-n", "2", "-crashes", "0", "-stress", "50",
		"-ledger", path,
	}, extra...)
	if _, err := captureStdout(t, func() error { return run(args) }); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	ms, err := perflog.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("want 1 manifest, got %d", len(ms))
	}
	return ms[0]
}

// TestManifestSemanticBytesDeterministic pins the ledger's core guarantee:
// the manifest's semantic portion (tool, config, digest, counters) is
// byte-identical at -parallel 1 vs 8 and with telemetry on vs off. Only
// host-dependent sections (wall samples, telemetry snapshot, provenance) may
// differ between those runs.
func TestManifestSemanticBytesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exhaustive searches")
	}
	base := ledgerRun(t, "-parallel", "1")
	variants := map[string]*perflog.Manifest{
		"-parallel 8":  ledgerRun(t, "-parallel", "8"),
		"telemetry on": ledgerRun(t, "-parallel", "1", "-heartbeat", "1h"),
		"json output":  ledgerRun(t, "-parallel", "1", "-json"),
	}
	want := base.SemanticBytes()
	for name, m := range variants {
		if got := m.SemanticBytes(); !bytes.Equal(got, want) {
			t.Errorf("%s changed the semantic manifest:\nbase:    %s\nvariant: %s", name, want, got)
		}
	}
	if tel := variants["telemetry on"].Telemetry; len(tel) == 0 {
		t.Error("telemetry-enabled run exported no telemetry snapshot")
	}
	if base.Telemetry != nil {
		t.Errorf("telemetry-off run exported a snapshot: %v", base.Telemetry)
	}
}

// TestConfigDigestStability checks what the digest must and must not react
// to: stable under non-semantic flags (-parallel, -heartbeat, the ledger
// path itself, -runlabel), different under semantic ones (-alg, -n).
func TestConfigDigestStability(t *testing.T) {
	if testing.Short() {
		t.Skip("runs exhaustive searches")
	}
	base := ledgerRun(t)
	if base.ConfigDigest == "" {
		t.Fatal("manifest missing config digest")
	}
	for name, m := range map[string]*perflog.Manifest{
		"-parallel":  ledgerRun(t, "-parallel", "4"),
		"-heartbeat": ledgerRun(t, "-heartbeat", "1h"),
		"-runlabel":  ledgerRun(t, "-runlabel", "other"),
	} {
		// Each helper call already uses a different ledger path, so path
		// independence is exercised by every comparison here.
		if m.ConfigDigest != base.ConfigDigest {
			t.Errorf("%s changed the config digest", name)
		}
	}
	if m := ledgerRun(t, "-alg", "ticket"); m.ConfigDigest == base.ConfigDigest {
		t.Error("-alg change did not move the config digest")
	}
	if m := ledgerRun(t, "-n", "3"); m.ConfigDigest == base.ConfigDigest {
		t.Error("-n change did not move the config digest")
	}
}

// TestVersionFlag checks the shared -version banner.
func TestVersionFlag(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-version"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix([]byte(out), []byte("rmecheck go")) {
		t.Fatalf("version banner: %q", out)
	}
}
