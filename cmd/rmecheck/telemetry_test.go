package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rme/internal/telemetry"
)

// TestJSONParityWithTelemetry is the determinism acceptance check: the -json
// document must be byte-identical with heartbeats and the metrics stream on
// or off, at -parallel 1 and 8. Telemetry is write-only off the result path.
func TestJSONParityWithTelemetry(t *testing.T) {
	base := []string{"-alg", "yatree", "-n", "2", "-crashes", "1", "-max", "20000", "-stress", "50", "-json"}
	dir := t.TempDir()
	variant := func(name string, extra ...string) string {
		t.Helper()
		out, err := captureStdout(t, func() error {
			return run(append(append([]string{}, base...), extra...))
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return out
	}
	off1 := variant("off-parallel1", "-parallel", "1")
	off8 := variant("off-parallel8", "-parallel", "8")
	on1 := variant("on-parallel1", "-parallel", "1",
		"-heartbeat", "2ms", "-metrics", filepath.Join(dir, "p1.jsonl"))
	on8 := variant("on-parallel8", "-parallel", "8",
		"-heartbeat", "2ms", "-metrics", filepath.Join(dir, "p8.jsonl"))
	if len(off1) == 0 {
		t.Fatal("no output captured")
	}
	for name, got := range map[string]string{"off-parallel8": off8, "on-parallel1": on1, "on-parallel8": on8} {
		if got != off1 {
			t.Fatalf("stdout differs with telemetry (%s):\n--- baseline ---\n%s\n--- %s ---\n%s", name, off1, name, got)
		}
	}
}

// TestHeartbeatStreamMatchesResult is the accounting acceptance check: a
// heartbeat-enabled search emits at least two snapshots, and the final
// cumulative record agrees with the reported Result exactly, field for
// field, on every mirrored counter.
func TestHeartbeatStreamMatchesResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	out, err := captureStdout(t, func() error {
		return run([]string{"-alg", "yatree", "-n", "2", "-crashes", "1", "-stress", "0", "-json",
			"-heartbeat", "1ms", "-metrics", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc jsonReport
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("want >= 2 snapshots, got %d", len(recs))
	}
	if recs[0].Final || !recs[len(recs)-1].Final {
		t.Fatalf("stream not bracketed by baseline and final records: first=%+v last=%+v",
			recs[0], recs[len(recs)-1])
	}
	final := recs[len(recs)-1].Metrics
	ex := doc.Exhaustive
	for name, want := range map[string]int64{
		"check_states_visited":     int64(ex.StatesVisited),
		"check_states_pruned":      int64(ex.StatesPruned),
		"check_sleep_pruned":       int64(ex.SleepPruned),
		"check_schedules_complete": int64(ex.Complete),
		"check_machine_steps":      ex.MachineSteps,
		"check_replay_steps":       ex.ReplaySteps,
	} {
		if final[name] != want {
			t.Errorf("final %s = %d, want %d (Result field)", name, final[name], want)
		}
	}
	if ex.StatesVisited == 0 {
		t.Fatal("search visited no states; the equality checks above are vacuous")
	}
}

// debugServedRun launches run(args) in a goroutine with stdout silenced and
// stderr piped, parses the "debug server on ..." announcement, and returns
// the bound address plus the run's completion channel.
func debugServedRun(t *testing.T, args []string) (string, chan error) {
	t.Helper()
	rErr, wErr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = devnull, wErr
	t.Cleanup(func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
		wErr.Close()
		rErr.Close()
	})
	done := make(chan error, 1)
	go func() { done <- run(args) }()
	br := bufio.NewReader(rErr)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading debug announcement: %v", err)
	}
	go io.Copy(io.Discard, br) // keep draining stderr so the run never blocks
	const marker = "debug server on http://"
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("no debug server announcement, got %q", line)
	}
	return strings.Fields(line[i+len(marker):])[0], done
}

// pollGet fetches url until the body contains want (the run may not have
// populated the registry at the first scrape).
func pollGet(t *testing.T, url, want string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK && strings.Contains(string(body), want) {
				return string(body)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: never saw %q (last err %v)", url, want, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugEndpointsDuringSearch is the -debugaddr integration check: while
// a search runs, /metrics (both formats), /debug/vars and /debug/pprof all
// answer on the announced address.
func TestDebugEndpointsDuringSearch(t *testing.T) {
	addr, done := debugServedRun(t, []string{
		"-alg", "yatree", "-n", "2", "-crashes", "1", "-max", "1000",
		"-stress", "50000", "-parallel", "1", "-debugaddr", "127.0.0.1:0",
	})
	base := "http://" + addr

	prom := pollGet(t, base+"/metrics", "check_states_visited")
	if !strings.Contains(prom, "# TYPE check_states_visited counter") {
		t.Errorf("prometheus exposition missing TYPE line:\n%s", prom)
	}
	var js struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(pollGet(t, base+"/metrics?format=json", "check_states_visited")), &js); err != nil {
		t.Errorf("JSON /metrics: %v", err)
	} else if js.Counters["check_states_visited"] == 0 {
		t.Errorf("JSON /metrics shows no visited states: %v", js.Counters)
	}
	pollGet(t, base+"/debug/vars", "rme_telemetry")
	pollGet(t, base+"/debug/pprof/", "goroutine")

	if err := <-done; err != nil {
		t.Fatalf("instrumented run failed: %v", err)
	}
}

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof files.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	_, err := captureStdout(t, func() error {
		return run([]string{"-alg", "yatree", "-n", "2", "-crashes", "1", "-stress", "50",
			"-cpuprofile", cpu, "-memprofile", mem})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}
