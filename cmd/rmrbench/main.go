// Command rmrbench regenerates the repository's experiment tables (E1–E8
// plus the extension experiments E9–E12),
// one per quantitative claim of "Word-Size RMR Tradeoffs for Recoverable
// Mutual Exclusion" (PODC 2023). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded output.
//
// Usage:
//
//	rmrbench [-full] [-only E2,E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rme/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmrbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmrbench", flag.ContinueOnError)
	full := fs.Bool("full", false, "run the enlarged parameter sweeps")
	only := fs.String("only", "", "comma-separated experiment ids (e.g. E1,E5); default all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	opts := harness.Options{Full: *full}
	for _, exp := range harness.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		fmt.Printf("=== %s: %s\n", exp.ID, exp.Title)
		fmt.Printf("    claim: %s\n\n", exp.Claim)
		start := time.Now()
		tables, err := exp.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		for i := range tables {
			tables[i].Render(os.Stdout)
		}
		fmt.Printf("    (%s in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
