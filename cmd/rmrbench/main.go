// Command rmrbench regenerates the repository's experiment tables (E1–E8
// plus the extension experiments E9–E12),
// one per quantitative claim of "Word-Size RMR Tradeoffs for Recoverable
// Mutual Exclusion" (PODC 2023). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded output.
//
// Grids run on the engine's deterministic worker pool: the rendered tables
// are byte-identical at any -parallel value (including 1), only wall time
// changes. A machine-readable summary — wall time, run counts, and RMR
// statistics per experiment — is written to the -json path.
//
// Step-level observability: -trace FILE captures every engine run's event
// stream (JSONL, or Chrome trace_event JSON with -traceformat chrome, for
// Perfetto); -top N prints the hottest cells and costliest processes so a
// surprising table entry can be attributed to a specific access pattern.
// -cpuprofile/-memprofile write pprof profiles of the bench itself.
//
// Usage:
//
//	rmrbench [-full] [-only E2,E5] [-seed S] [-parallel N] [-json BENCH_results.json]
//	         [-trace FILE] [-traceformat jsonl|chrome] [-top N]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-heartbeat DUR] [-metrics FILE] [-debugaddr ADDR]
//
// -heartbeat prints live engine statistics (runs/sec, worker utilization)
// to stderr while the grids execute; -metrics appends JSONL metric
// snapshots; -debugaddr serves /metrics, /debug/vars and /debug/pprof. All
// three are strictly observational: the tables stay byte-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rme/internal/cliutil"
	"rme/internal/engine"
	"rme/internal/harness"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmrbench:", err)
		os.Exit(1)
	}
}

// experimentRecord is one experiment's entry in the JSON report.
type experimentRecord struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Tables int     `json:"tables"`
	engine.MetricsSnapshot
}

// benchReport is the top-level JSON report.
type benchReport struct {
	Full        bool               `json:"full"`
	Parallel    int                `json:"parallel"`
	Seed        int64              `json:"seed"`
	TotalWallMS float64            `json:"total_wall_ms"`
	Experiments []experimentRecord `json:"experiments"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmrbench", flag.ContinueOnError)
	full := fs.Bool("full", false, "run the enlarged parameter sweeps")
	only := fs.String("only", "", "comma-separated experiment ids (e.g. E1,E5); default all")
	parallel := fs.Int("parallel", 0, "engine workers per experiment grid (0 = GOMAXPROCS); tables are identical at any value")
	jsonPath := fs.String("json", "BENCH_results.json", "machine-readable report path (empty to skip)")
	seed := fs.Int64("seed", 0, "offset for the experiments' base seeds (0 = the published tables)")
	tracePath := fs.String("trace", "", "write a step-level trace of every engine run to this file")
	traceFormat := fs.String("traceformat", "jsonl", "trace encoding: jsonl or chrome (Perfetto)")
	top := fs.Int("top", 0, "print the N hottest cells/procs from the captured trace (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	tele := cliutil.TelemetryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := trace.ParseFormat(*traceFormat); err != nil {
		return err
	}
	stopCPU, err := cliutil.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	stopTele, err := tele.Start("bench", telemetry.View{
		Progress:    "engine_runs",
		UtilBusy:    "engine_busy_ns",
		UtilWorkers: "engine_workers",
	})
	if err != nil {
		return err
	}
	defer stopTele()
	var capture *trace.Capture
	if *tracePath != "" || *top > 0 {
		capture = &trace.Capture{}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	report := benchReport{Full: *full, Parallel: engine.Parallelism(*parallel), Seed: *seed}
	benchStart := time.Now()
	for _, exp := range harness.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		fmt.Printf("=== %s: %s\n", exp.ID, exp.Title)
		fmt.Printf("    claim: %s\n\n", exp.Claim)
		metrics := &engine.Metrics{}
		opts := harness.Options{Full: *full, Parallel: *parallel, Metrics: metrics, Seed: *seed, Trace: capture, Telemetry: tele.Registry()}
		start := time.Now()
		tables, err := exp.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		wall := time.Since(start)
		for i := range tables {
			tables[i].Render(os.Stdout)
		}
		// Timings go to stderr: stdout is byte-identical at any -parallel
		// value, so runs can be diffed directly.
		fmt.Fprintf(os.Stderr, "    (%s in %v)\n\n", exp.ID, wall.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, experimentRecord{
			ID:              exp.ID,
			Title:           exp.Title,
			WallMS:          float64(wall.Microseconds()) / 1000,
			Tables:          len(tables),
			MetricsSnapshot: metrics.Snapshot(),
		})
	}
	report.TotalWallMS = float64(time.Since(benchStart).Microseconds()) / 1000

	if capture != nil {
		runs := capture.Runs()
		// The summary is as deterministic as the tables, so it shares stdout.
		cliutil.SummarizeTrace(os.Stdout, runs, sim.CC, *top)
		if err := cliutil.ExportTrace(*tracePath, *traceFormat, runs); err != nil {
			return err
		}
	}
	if err := cliutil.WriteHeapProfile(*memProfile); err != nil {
		return err
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments, %.0f ms total)\n",
			*jsonPath, len(report.Experiments), report.TotalWallMS)
	}
	return nil
}
