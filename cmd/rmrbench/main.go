// Command rmrbench regenerates the repository's experiment tables (E1–E8
// plus the extension experiments E9–E12),
// one per quantitative claim of "Word-Size RMR Tradeoffs for Recoverable
// Mutual Exclusion" (PODC 2023). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded output.
//
// Grids run on the engine's deterministic worker pool: the rendered tables
// are byte-identical at any -parallel value (including 1), only wall time
// changes. A machine-readable summary — wall time, run counts, and RMR
// statistics per experiment — is written to the -json path.
//
// Step-level observability: -trace FILE captures every engine run's event
// stream (JSONL, or Chrome trace_event JSON with -traceformat chrome, for
// Perfetto); -top N prints the hottest cells and costliest processes so a
// surprising table entry can be attributed to a specific access pattern.
// -cpuprofile/-memprofile write pprof profiles of the bench itself.
//
// Usage:
//
//	rmrbench [-full] [-only E2,E5] [-seed S] [-parallel N] [-json BENCH_results.json]
//	         [-trace FILE] [-traceformat jsonl|chrome] [-top N]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-heartbeat DUR] [-metrics FILE] [-debugaddr ADDR]
//	         [-ledger runs/ledger.jsonl] [-runlabel LABEL] [-version]
//
// The -json report merges into an existing file keyed by experiment id, so a
// partial rerun (-only E2) updates only the experiments it ran. -ledger
// appends one perf-ledger manifest per experiment (see internal/perflog and
// cmd/rmereport) for cross-run regression gating.
//
// -heartbeat prints live engine statistics (runs/sec, worker utilization)
// to stderr while the grids execute; -metrics appends JSONL metric
// snapshots; -debugaddr serves /metrics, /debug/vars and /debug/pprof. All
// three are strictly observational: the tables stay byte-identical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rme/internal/cliutil"
	"rme/internal/engine"
	"rme/internal/harness"
	"rme/internal/perflog"
	"rme/internal/sim"
	"rme/internal/telemetry"
	"rme/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmrbench:", err)
		os.Exit(1)
	}
}

// experimentRecord is one experiment's entry in the JSON report.
type experimentRecord struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
	Tables int     `json:"tables"`
	engine.MetricsSnapshot
}

// benchReport is the top-level JSON report.
type benchReport struct {
	Full        bool               `json:"full"`
	Parallel    int                `json:"parallel"`
	Seed        int64              `json:"seed"`
	TotalWallMS float64            `json:"total_wall_ms"`
	Provenance  perflog.Provenance `json:"provenance"`
	Experiments []experimentRecord `json:"experiments"`
}

// mergeResults folds the new report into an existing results file instead of
// overwriting it: experiments union keyed by id (existing order kept, same-id
// entries replaced, new ids appended), run scalars and provenance taken from
// the new run, and unknown top-level keys (e.g. the native backend's section)
// preserved untouched. A partial rerun (-only E2) therefore updates exactly
// the experiments it ran. Mirrors rmenative -merge.
func mergeResults(existing []byte, report benchReport) ([]byte, error) {
	doc := map[string]json.RawMessage{}
	if len(existing) > 0 {
		if err := json.Unmarshal(existing, &doc); err != nil {
			return nil, fmt.Errorf("existing results: %w", err)
		}
	}
	var old []experimentRecord
	if raw, ok := doc["experiments"]; ok {
		if err := json.Unmarshal(raw, &old); err != nil {
			return nil, fmt.Errorf("existing experiments: %w", err)
		}
	}
	newByID := make(map[string]int, len(report.Experiments))
	for i, e := range report.Experiments {
		newByID[e.ID] = i
	}
	merged := make([]experimentRecord, 0, len(old)+len(report.Experiments))
	used := make(map[string]bool, len(newByID))
	for _, e := range old {
		if i, ok := newByID[e.ID]; ok {
			merged = append(merged, report.Experiments[i])
			used[e.ID] = true
		} else {
			merged = append(merged, e)
		}
	}
	for _, e := range report.Experiments {
		if !used[e.ID] {
			merged = append(merged, e)
		}
	}
	report.Experiments = merged

	// Re-encode the merged report over the old document so unknown keys
	// survive the round trip.
	blob, err := json.Marshal(report)
	if err != nil {
		return nil, err
	}
	fresh := map[string]json.RawMessage{}
	if err := json.Unmarshal(blob, &fresh); err != nil {
		return nil, err
	}
	for k, v := range fresh {
		doc[k] = v
	}
	return json.MarshalIndent(doc, "", "  ")
}

// manifest builds one experiment's perf-ledger entry. The semantic config is
// the experiment's identity (id, sweep size, seed offset) — not the -only
// list or -parallel — so a full baseline run gates a later subset rerun.
func manifest(rec experimentRecord, full bool, seed int64) *perflog.Manifest {
	m := perflog.New("rmrbench")
	m.SetConfig("experiment", rec.ID)
	m.SetConfig("full", full)
	m.SetConfig("seed", seed)
	m.Counter("runs", rec.Runs)
	m.Counter("steps", rec.Steps)
	m.Counter("max_rmr", rec.MaxRMR)
	m.Counter("passages", rec.Passages)
	m.Counter("tables", int64(rec.Tables))
	// AvgMaxRMR is a deterministic ratio of two counters; scale to hold it in
	// the exact-gated integer set.
	m.Counter("avg_max_rmr_x100", int64(rec.AvgMaxRMR*100+0.5))
	m.Sample("wall_ms", rec.WallMS)
	return m
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmrbench", flag.ContinueOnError)
	full := fs.Bool("full", false, "run the enlarged parameter sweeps")
	only := fs.String("only", "", "comma-separated experiment ids (e.g. E1,E5); default all")
	parallel := fs.Int("parallel", 0, "engine workers per experiment grid (0 = GOMAXPROCS); tables are identical at any value")
	jsonPath := fs.String("json", "BENCH_results.json", "machine-readable report path (empty to skip)")
	seed := fs.Int64("seed", 0, "offset for the experiments' base seeds (0 = the published tables)")
	tracePath := fs.String("trace", "", "write a step-level trace of every engine run to this file")
	traceFormat := fs.String("traceformat", "jsonl", "trace encoding: jsonl or chrome (Perfetto)")
	top := fs.Int("top", 0, "print the N hottest cells/procs from the captured trace (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	tele := cliutil.TelemetryFlags(fs)
	ledger := cliutil.LedgerFlags(fs)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(cliutil.VersionString("rmrbench"))
		return nil
	}
	if _, err := trace.ParseFormat(*traceFormat); err != nil {
		return err
	}
	stopCPU, err := cliutil.StartCPUProfile(*cpuProfile)
	if err != nil {
		return err
	}
	defer stopCPU()
	stopTele, err := tele.Start("bench", telemetry.View{
		Progress:    "engine_runs",
		UtilBusy:    "engine_busy_ns",
		UtilWorkers: "engine_workers",
	})
	if err != nil {
		return err
	}
	defer stopTele()
	var capture *trace.Capture
	if *tracePath != "" || *top > 0 {
		capture = &trace.Capture{}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	report := benchReport{Full: *full, Parallel: engine.Parallelism(*parallel), Seed: *seed, Provenance: perflog.Build()}
	benchStart := time.Now()
	for _, exp := range harness.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		fmt.Printf("=== %s: %s\n", exp.ID, exp.Title)
		fmt.Printf("    claim: %s\n\n", exp.Claim)
		metrics := &engine.Metrics{}
		opts := harness.Options{Full: *full, Parallel: *parallel, Metrics: metrics, Seed: *seed, Trace: capture, Telemetry: tele.Registry()}
		start := time.Now()
		tables, err := exp.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		wall := time.Since(start)
		for i := range tables {
			tables[i].Render(os.Stdout)
		}
		// Timings go to stderr: stdout is byte-identical at any -parallel
		// value, so runs can be diffed directly.
		fmt.Fprintf(os.Stderr, "    (%s in %v)\n\n", exp.ID, wall.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, experimentRecord{
			ID:              exp.ID,
			Title:           exp.Title,
			WallMS:          float64(wall.Microseconds()) / 1000,
			Tables:          len(tables),
			MetricsSnapshot: metrics.Snapshot(),
		})
	}
	report.TotalWallMS = float64(time.Since(benchStart).Microseconds()) / 1000

	if capture != nil {
		runs := capture.Runs()
		// The summary is as deterministic as the tables, so it shares stdout.
		cliutil.SummarizeTrace(os.Stdout, runs, sim.CC, *top)
		if err := cliutil.ExportTrace(*tracePath, *traceFormat, runs); err != nil {
			return err
		}
	}
	if err := cliutil.WriteHeapProfile(*memProfile); err != nil {
		return err
	}

	if *jsonPath != "" {
		existing, err := os.ReadFile(*jsonPath)
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		blob, err := mergeResults(existing, report)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments this run, %.0f ms total)\n",
			*jsonPath, len(report.Experiments), report.TotalWallMS)
	}

	manifests := make([]*perflog.Manifest, 0, len(report.Experiments))
	for _, rec := range report.Experiments {
		manifests = append(manifests, manifest(rec, *full, *seed))
	}
	return ledger.Emit(tele.Registry(), manifests...)
}
