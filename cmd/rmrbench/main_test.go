package main

import (
	"io"
	"os"
	"testing"
)

// captureStdout runs fn with stdout redirected to a pipe and returns what it
// wrote. Stderr (timings, notes) is silenced: the contract under test is
// that *stdout* is byte-identical across -parallel values.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = wr, devnull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
	}()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := fn()
	wr.Close()
	out := <-done
	r.Close()
	return out, runErr
}

// TestStdoutParityAcrossParallelism locks in the documented guarantee that
// the rendered experiment tables are byte-identical at any -parallel value.
// E6, E9, and E11 cover the three experiment families (engine grids, crash
// waves, seeded-random fairness runs) while staying fast.
func TestStdoutParityAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment grids")
	}
	args := []string{"-only", "E6,E9,E11", "-json", ""}
	one, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "1"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 1: %v", err)
	}
	eight, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "8"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 8: %v", err)
	}
	if one != eight {
		t.Fatalf("stdout differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", one, eight)
	}
	if len(one) == 0 {
		t.Fatal("no output captured")
	}
}

// TestSeedChangesRandomizedTables checks that -seed actually reaches the
// randomized experiments: E11's fairness sample must differ between seeds.
func TestSeedChangesRandomizedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment grids")
	}
	base, err := captureStdout(t, func() error { return run([]string{"-only", "E11", "-json", "", "-seed", "0"}) })
	if err != nil {
		t.Fatal(err)
	}
	reseeded, err := captureStdout(t, func() error { return run([]string{"-only", "E11", "-json", "", "-seed", "12345"}) })
	if err != nil {
		t.Fatal(err)
	}
	if base == reseeded {
		t.Fatal("-seed 12345 produced the same E11 tables as -seed 0")
	}
}
