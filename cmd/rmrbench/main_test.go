package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"rme/internal/perflog"
)

// captureStdout runs fn with stdout redirected to a pipe and returns what it
// wrote. Stderr (timings, notes) is silenced: the contract under test is
// that *stdout* is byte-identical across -parallel values.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	os.Stdout, os.Stderr = wr, devnull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devnull.Close()
	}()
	done := make(chan string, 1)
	go func() {
		blob, _ := io.ReadAll(r)
		done <- string(blob)
	}()
	runErr := fn()
	wr.Close()
	out := <-done
	r.Close()
	return out, runErr
}

// TestStdoutParityAcrossParallelism locks in the documented guarantee that
// the rendered experiment tables are byte-identical at any -parallel value.
// E6, E9, and E11 cover the three experiment families (engine grids, crash
// waves, seeded-random fairness runs) while staying fast.
func TestStdoutParityAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment grids")
	}
	args := []string{"-only", "E6,E9,E11", "-json", ""}
	one, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "1"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 1: %v", err)
	}
	eight, err := captureStdout(t, func() error { return run(append([]string{"-parallel", "8"}, args...)) })
	if err != nil {
		t.Fatalf("-parallel 8: %v", err)
	}
	if one != eight {
		t.Fatalf("stdout differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", one, eight)
	}
	if len(one) == 0 {
		t.Fatal("no output captured")
	}
}

// TestTraceParityAcrossParallelism locks in the trace determinism guarantee:
// the exported step-level trace — not just the rendered tables — is
// byte-identical at any -parallel value, because captures are merged in
// submission order regardless of which worker finished first.
func TestTraceParityAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment grid")
	}
	dir := t.TempDir()
	one := filepath.Join(dir, "p1.jsonl")
	eight := filepath.Join(dir, "p8.jsonl")
	for parallel, path := range map[string]string{"1": one, "8": eight} {
		if _, err := captureStdout(t, func() error {
			return run([]string{"-only", "E6", "-json", "", "-parallel", parallel, "-trace", path})
		}); err != nil {
			t.Fatalf("-parallel %s: %v", parallel, err)
		}
	}
	a, err := os.ReadFile(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(eight)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace differs between -parallel 1 (%d bytes) and 8 (%d bytes)", len(a), len(b))
	}
}

// TestStdoutMachineClean asserts the output-stream discipline: no timing or
// progress diagnostics on stdout (they carry wall times that change between
// runs), so stdout can be diffed or piped directly.
func TestStdoutMachineClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment grid")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-only", "E6", "-json", ""})
	})
	if err != nil {
		t.Fatal(err)
	}
	timing := regexp.MustCompile(`\bin \d+(\.\d+)?[mµn]?s\b|^wrote `)
	for _, line := range strings.Split(out, "\n") {
		if timing.MatchString(line) {
			t.Errorf("timing/progress line leaked to stdout: %q", line)
		}
	}
}

// TestTracingDisabledNoRegression is the bench guard: with tracing disabled
// (no -trace, no -top) the E2 grid must stay within generous slack of the
// recorded baseline in BENCH_results.json, so the observer hook's nil check
// is demonstrably free. Gated behind RME_BENCH_GUARD=1 because wall-clock
// assertions are too flaky for ordinary CI runners.
func TestTracingDisabledNoRegression(t *testing.T) {
	if os.Getenv("RME_BENCH_GUARD") == "" {
		t.Skip("set RME_BENCH_GUARD=1 to enable the wall-clock guard")
	}
	blob, err := os.ReadFile("../../BENCH_results.json")
	if err != nil {
		t.Skipf("no baseline: %v", err)
	}
	var baseline struct {
		Experiments []struct {
			ID     string  `json:"id"`
			WallMS float64 `json:"wall_ms"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(blob, &baseline); err != nil {
		t.Fatal(err)
	}
	var baseMS float64
	for _, e := range baseline.Experiments {
		if e.ID == "E2" {
			baseMS = e.WallMS
		}
	}
	if baseMS == 0 {
		t.Skip("baseline has no E2 entry")
	}
	start := time.Now()
	if _, err := captureStdout(t, func() error {
		return run([]string{"-only", "E2", "-json", "", "-parallel", "1"})
	}); err != nil {
		t.Fatal(err)
	}
	got := float64(time.Since(start).Microseconds()) / 1000
	// 5x slack: this guards against the observer hook accidentally becoming
	// hot (an order of magnitude), not against scheduler noise.
	if got > 5*baseMS {
		t.Errorf("tracing-disabled E2 took %.0f ms, baseline %.0f ms (>5x)", got, baseMS)
	}
}

// TestJSONMergePreservesOtherExperiments locks in the -json merge semantics:
// a second run restricted to one experiment must update that entry in place
// and leave every other experiment — and unknown top-level sections like the
// native backend's — untouched, instead of overwriting the file wholesale.
func TestJSONMergePreservesOtherExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment grids")
	}
	path := filepath.Join(t.TempDir(), "results.json")
	seeded := []byte(`{
  "experiments": [
    {"id": "E6", "title": "stale", "wall_ms": 1, "tables": 0, "runs": 0, "steps": 0, "max_rmr": 0, "avg_max_rmr": 0},
    {"id": "EX", "title": "kept", "wall_ms": 2, "tables": 3, "runs": 4, "steps": 5, "max_rmr": 6, "avg_max_rmr": 7}
  ],
  "native": {"points": [{"alg": "yatree"}]}
}`)
	if err := os.WriteFile(path, seeded, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := captureStdout(t, func() error {
		return run([]string{"-only", "E6", "-json", path})
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiments []struct {
			ID    string `json:"id"`
			Title string `json:"title"`
			Runs  int64  `json:"runs"`
		} `json:"experiments"`
		Native map[string]json.RawMessage `json:"native"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != 2 {
		t.Fatalf("merge produced %d experiments, want 2: %s", len(doc.Experiments), blob)
	}
	if doc.Experiments[0].ID != "E6" || doc.Experiments[0].Title == "stale" || doc.Experiments[0].Runs == 0 {
		t.Fatalf("E6 not replaced in place: %+v", doc.Experiments[0])
	}
	if doc.Experiments[1].ID != "EX" || doc.Experiments[1].Title != "kept" {
		t.Fatalf("unrelated experiment clobbered: %+v", doc.Experiments[1])
	}
	if _, ok := doc.Native["points"]; !ok {
		t.Fatalf("unknown top-level key dropped by merge: %s", blob)
	}
}

// TestLedgerEmission checks the -ledger wiring end to end: one manifest per
// experiment, rmrbench-shaped counters, and the -runlabel stamp.
func TestLedgerEmission(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment grid")
	}
	ledger := filepath.Join(t.TempDir(), "runs.jsonl")
	if _, err := captureStdout(t, func() error {
		return run([]string{"-only", "E6", "-json", "", "-ledger", ledger, "-runlabel", "unit"})
	}); err != nil {
		t.Fatal(err)
	}
	ms, err := perflog.Read(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("want 1 manifest, got %d", len(ms))
	}
	m := ms[0]
	if m.Tool != "rmrbench" || m.Label != "unit" || m.Config["experiment"] != "E6" {
		t.Fatalf("manifest identity wrong: %+v", m)
	}
	for _, key := range []string{"runs", "steps", "max_rmr", "tables"} {
		if m.Counters[key] == 0 {
			t.Errorf("counter %s missing or zero: %+v", key, m.Counters)
		}
	}
	if m.ConfigDigest == "" || m.Wall["wall_ms"] <= 0 {
		t.Fatalf("digest or wall sample missing: %+v", m)
	}
}

// TestSeedChangesRandomizedTables checks that -seed actually reaches the
// randomized experiments: E11's fairness sample must differ between seeds.
func TestSeedChangesRandomizedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment grids")
	}
	base, err := captureStdout(t, func() error { return run([]string{"-only", "E11", "-json", "", "-seed", "0"}) })
	if err != nil {
		t.Fatal(err)
	}
	reseeded, err := captureStdout(t, func() error { return run([]string{"-only", "E11", "-json", "", "-seed", "12345"}) })
	if err != nil {
		t.Fatal(err)
	}
	if base == reseeded {
		t.Fatal("-seed 12345 produced the same E11 tables as -seed 0")
	}
}
