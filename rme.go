// Package rme is a laboratory for recoverable mutual exclusion (RME) built
// around the PODC 2023 paper "Word-Size RMR Tradeoffs for Recoverable Mutual
// Exclusion" (Chan, Giakkoupis, Woelfel): a deterministic shared-memory
// simulator with CC/DSM remote-memory-reference accounting, w-bit words,
// and individual crash steps; a suite of conventional and recoverable
// mutual exclusion algorithms; the paper's combinatorial machinery
// (Lemmas 4, 5, and the Process-Hiding Lemma) implemented constructively;
// and an operational lower-bound adversary that forces the paper's
// Ω(min(log_w n, log n / log log n)) RMR bound on real executions.
//
// # Quick start
//
//	cfg := rme.Config{
//		Procs:     8,
//		Width:     8,                 // 8-bit words
//		Model:     rme.CC,            // cache-coherent cost model
//		Algorithm: rme.MustAlgorithm("watree"),
//		Passes:    2,
//	}
//	s, err := rme.NewSession(cfg)
//	if err != nil { ... }
//	defer s.Close()
//	if err := s.RunRoundRobin(); err != nil { ... }
//	fmt.Println("worst passage cost:", s.MaxPassageRMRs(rme.CC), "RMRs")
//
// Crash injection, adversarial scheduling, model checking, and the
// experiment harness are exposed through NewAdversary, Exhaustive/Stress,
// and Experiments. For real-hardware benchmarking the same algorithms run
// on sync/atomic via NewNativeLock.
package rme

import (
	"fmt"
	"sort"

	"rme/internal/adversary"
	"rme/internal/algorithms/clh"
	"rme/internal/algorithms/grlock"
	"rme/internal/algorithms/mcs"
	"rme/internal/algorithms/qword"
	"rme/internal/algorithms/rspin"
	"rme/internal/algorithms/tas"
	"rme/internal/algorithms/ticket"
	"rme/internal/algorithms/tournament"
	"rme/internal/algorithms/watree"
	"rme/internal/algorithms/yatree"
	"rme/internal/check"
	"rme/internal/engine"
	"rme/internal/harness"
	"rme/internal/hiding"
	"rme/internal/hypergraph"
	"rme/internal/mutex"
	"rme/internal/sim"
	"rme/internal/word"
)

// Core model types, re-exported from the internal packages.
type (
	// Word is a shared-memory cell value.
	Word = word.Word
	// Width is the word size w in bits.
	Width = word.Width
	// Model selects the RMR cost model.
	Model = sim.Model
	// Machine is the deterministic simulator.
	Machine = sim.Machine
	// Schedule is a replayable sequence of step/crash actions.
	Schedule = sim.Schedule
	// Event is one trace entry.
	Event = sim.Event
	// Fingerprint is a 128-bit canonical-state hash for memoized search.
	Fingerprint = sim.Fingerprint

	// Algorithm is a mutual exclusion algorithm family.
	Algorithm = mutex.Algorithm
	// Handle is a process's lock interface (Lock/Unlock/Recover).
	Handle = mutex.Handle
	// Config describes a simulated session.
	Config = mutex.Config
	// Session is a driven execution with safety monitors.
	Session = mutex.Session
	// PassageStat records RMRs per passage.
	PassageStat = mutex.PassageStat
	// RandomRunOptions tunes randomized runs.
	RandomRunOptions = mutex.RandomRunOptions
	// NativeLock runs an Algorithm on real sync/atomic memory.
	NativeLock = mutex.NativeLock
	// NativeHandle is one process's native lock interface: a sync.Locker
	// with Recover and panic-based crash injection (CrashAfter/Super).
	NativeHandle = mutex.NativeHandle
	// RecoverStatus reports where Recover left a process.
	RecoverStatus = mutex.RecoverStatus

	// AdversaryConfig parameterizes the lower-bound adversary.
	AdversaryConfig = adversary.Config
	// Adversary is the Theorem 1 round construction.
	Adversary = adversary.Adversary
	// AdversaryReport is its outcome.
	AdversaryReport = adversary.Report

	// CheckConfig parameterizes the model checker.
	CheckConfig = check.Config
	// CheckResult is a checker outcome.
	CheckResult = check.Result

	// RunSpec describes one simulation run for the execution engine.
	RunSpec = engine.RunSpec
	// RunResult is the engine's per-spec outcome, in submission order.
	RunResult = engine.Result
	// RunOptions tunes an engine batch (parallelism, metrics).
	RunOptions = engine.Options
	// Worker recycles simulated machines across runs (reset-reuse).
	Worker = engine.Worker
	// EngineMetrics accumulates run statistics across engine launches.
	EngineMetrics = engine.Metrics

	// Experiment is one of the paper-claim reproductions E1–E8 or the
	// extensions E9–E13.
	Experiment = harness.Experiment
	// ExperimentOptions tunes experiment scale.
	ExperimentOptions = harness.Options
	// Table is a rendered experiment result.
	Table = harness.Table

	// HidingConfig parameterizes the Process-Hiding Lemma construction.
	HidingConfig = hiding.Config
	// HidingCertificate is a Lemma 2 certificate.
	HidingCertificate = hiding.Certificate
	// Hypergraph is an explicit k-partite hypergraph (Lemmas 4 and 5).
	Hypergraph = hypergraph.Partite
)

// Cost models.
const (
	// CC is the cache-coherent model.
	CC = sim.CC
	// DSM is the distributed shared memory model.
	DSM = sim.DSM
)

// Recover outcomes, re-exported for NativeHandle.Recover callers.
const (
	// RecoverAcquired means the crash left the process holding the lock.
	RecoverAcquired = mutex.RecoverAcquired
	// RecoverReleased means the interrupted super-passage completed.
	RecoverReleased = mutex.RecoverReleased
	// RecoverIdle means the crash left no visible effect; start over.
	RecoverIdle = mutex.RecoverIdle
)

// NewSession builds a simulated machine running the configured algorithm,
// with every process poised at its first entry step.
func NewSession(cfg Config) (*Session, error) { return mutex.NewSession(cfg) }

// NewNativeLock instantiates an algorithm on the native sync/atomic backend
// for n processes at word width w (0 selects the full 64-bit word). Each
// participating goroutine calls Bind(id) for a handle that is a sync.Locker
// with Recover, crash injection (CrashAfter), and whole-super-passage
// driving (Super).
func NewNativeLock(alg Algorithm, n int, w Width) (*NativeLock, error) {
	return mutex.NewNativeLock(alg, n, w)
}

// IsInjectedCrash reports whether a recovered panic value is a CrashAfter
// crash, for callers driving Lock/Unlock/Recover manually.
func IsInjectedCrash(r any) bool { return mutex.IsInjectedCrash(r) }

// NewAdversary prepares the lower-bound adversary over a fresh session.
func NewAdversary(cfg AdversaryConfig) (*Adversary, error) { return adversary.New(cfg) }

// Exhaustive runs the bounded-exhaustive interleaving checker: a stateful
// search with visited-state memoization (CheckConfig.Memo), sleep-set
// partial-order reduction (CheckConfig.POR), and checkpointed backtracking.
func Exhaustive(cfg CheckConfig) (*CheckResult, error) { return check.Exhaustive(cfg) }

// ExhaustiveReference runs the unreduced seed DFS. It enumerates the same
// schedules as Exhaustive with Memo and POR off, at a higher machine-step
// cost; it exists as the differential-testing oracle for the stateful search.
func ExhaustiveReference(cfg CheckConfig) (*CheckResult, error) {
	return check.ExhaustiveReference(cfg)
}

// Stress runs randomized schedules with optional crash injection.
func Stress(cfg CheckConfig, seeds int, crashProb float64) (*CheckResult, error) {
	return check.Stress(cfg, seeds, crashProb)
}

// Run executes a batch of RunSpecs on the engine's deterministic worker
// pool: one recycled machine per worker, results merged in submission order
// regardless of completion order, so output is identical at any parallelism.
func Run(specs []RunSpec, opts RunOptions) []RunResult { return engine.Run(specs, opts) }

// NewWorker returns an engine worker that recycles one simulated machine
// across compatible session requests.
func NewWorker() *Worker { return engine.NewWorker() }

// Experiments returns the paper-claim reproductions E1–E8 followed by the
// extension experiments E9–E13.
func Experiments() []Experiment { return harness.All() }

// FindExperiment returns the experiment with the given id (e.g. "E2").
func FindExperiment(id string) (Experiment, bool) { return harness.Find(id) }

// ConstructHiding runs the Process-Hiding Lemma construction.
func ConstructHiding(cfg HidingConfig) (*HidingCertificate, error) { return hiding.Construct(cfg) }

// TheoreticalLowerBound evaluates the Theorem 1 bound shape
// min(log_w n, log n/log log n).
func TheoreticalLowerBound(w Width, n int) float64 { return word.TheoreticalLowerBound(w, n) }

// Algorithms returns the built-in algorithm registry, name-sorted:
//
//	tas         test-and-set spin lock (conventional, unbounded RMRs)
//	ticket      fetch-and-increment ticket lock (conventional)
//	mcs         MCS queue lock (conventional, O(1) RMRs)
//	clh         CLH-style queue lock (conventional, O(1) RMRs, CC)
//	tournament  Peterson tournament tree (conventional, Θ(log n), CC)
//	yatree      Yang–Anderson-class tournament (conventional, Θ(log n), CC and DSM)
//	grlock      recoverable bakery (O(n), reads/writes only)
//	rspin       recoverable CAS spin lock (unbounded RMRs)
//	watree      w-ary recoverable FAA tree (Θ(log_w n), Katzan–Morrison style)
//	watree2     the same tree at fan-out 2 (Θ(log n) recoverable tournament)
//	watree-fast the w-ary tree with the adaptive O(1) fast path (O(min(k, log_w n)))
//	qword       recoverable FIFO queue-in-a-word via custom atomic ops (w ≥ n·log n)
func Algorithms() []Algorithm {
	algs := []Algorithm{
		tas.New(), ticket.New(), mcs.New(), clh.New(), tournament.New(),
		yatree.New(), grlock.New(), rspin.New(), watree.New(),
		watree.New(watree.WithFanout(2)), watree.New(watree.WithFastPath()),
		qword.New(),
	}
	sort.Slice(algs, func(i, j int) bool { return algs[i].Name() < algs[j].Name() })
	return algs
}

// NewAlgorithm returns a registry algorithm by name (see Algorithms), with
// "watree2" naming the fan-out-2 tree.
func NewAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "tas":
		return tas.New(), nil
	case "ticket":
		return ticket.New(), nil
	case "mcs":
		return mcs.New(), nil
	case "clh":
		return clh.New(), nil
	case "tournament":
		return tournament.New(), nil
	case "yatree":
		return yatree.New(), nil
	case "grlock":
		return grlock.New(), nil
	case "rspin":
		return rspin.New(), nil
	case "watree":
		return watree.New(), nil
	case "watree2":
		return watree.New(watree.WithFanout(2)), nil
	case "watree-fast":
		return watree.New(watree.WithFastPath()), nil
	case "qword":
		return qword.New(), nil
	default:
		return nil, fmt.Errorf("rme: unknown algorithm %q", name)
	}
}

// MustAlgorithm is NewAlgorithm that panics on unknown names; for use in
// examples and tests.
func MustAlgorithm(name string) Algorithm {
	alg, err := NewAlgorithm(name)
	if err != nil {
		panic(err)
	}
	return alg
}

// WATree returns the w-ary recoverable tree with an explicit fan-out
// (fanout 0 means min(w, n)).
func WATree(fanout int) Algorithm {
	if fanout == 0 {
		return watree.New()
	}
	return watree.New(watree.WithFanout(fanout))
}
