package rme_test

import (
	"testing"

	"rme"
)

// TestTradeoffEndToEnd is the repository's headline assertion as one test:
// for fixed n, across word widths, the measured upper bound (watree passage
// cost) and the adversary-forced lower bound must both decrease with w and
// bracket the theory curve's shape — Theorem 1 and its matching upper bound
// [19] observed on the same machine model.
func TestTradeoffEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several adversary constructions")
	}
	const n = 64
	type point struct {
		w      rme.Width
		forced int // lower bound side (adversary)
		spent  int // upper bound side (algorithm)
	}
	var curve []point
	for _, w := range []rme.Width{4, 8, 64} {
		adv, err := rme.NewAdversary(rme.AdversaryConfig{
			Session: rme.Config{
				Procs: n, Width: w, Model: rme.CC, Algorithm: rme.MustAlgorithm("watree"),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := adv.Run()
		adv.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.InvariantViolations) > 0 {
			t.Fatalf("w=%d: %v", w, rep.InvariantViolations)
		}

		s, err := rme.NewSession(rme.Config{
			Procs: n, Width: w, Model: rme.CC,
			Algorithm: rme.MustAlgorithm("watree"), Passes: 2, NoTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunRoundRobin(); err != nil {
			t.Fatal(err)
		}
		spent := s.MaxPassageRMRs(rme.CC)
		s.Close()

		curve = append(curve, point{w: w, forced: rep.ForcedRMRs(), spent: spent})
	}

	for i := 1; i < len(curve); i++ {
		if curve[i].forced > curve[i-1].forced {
			t.Errorf("lower bound grew with width: %+v -> %+v", curve[i-1], curve[i])
		}
		if curve[i].spent > curve[i-1].spent {
			t.Errorf("upper bound grew with width: %+v -> %+v", curve[i-1], curve[i])
		}
	}
	for _, p := range curve {
		if p.forced > p.spent {
			t.Errorf("w=%d: adversary forced %d RMRs but the algorithm's worst passage is %d — impossible",
				p.w, p.forced, p.spent)
		}
		if p.forced < 2 {
			t.Errorf("w=%d: forced only %d RMRs", p.w, p.forced)
		}
	}
	// The tradeoff must be strict between the extremes.
	if curve[0].forced <= curve[len(curve)-1].forced {
		t.Errorf("no word-size tradeoff visible in the lower bound: %+v", curve)
	}
	if curve[0].spent <= curve[len(curve)-1].spent {
		t.Errorf("no word-size tradeoff visible in the upper bound: %+v", curve)
	}
}

// TestAllRecoverableAlgorithmsSurviveCrashStorm drives every recoverable
// registry algorithm through a randomized crash storm via the public API.
func TestAllRecoverableAlgorithmsSurviveCrashStorm(t *testing.T) {
	for _, alg := range rme.Algorithms() {
		if !alg.Recoverable() {
			continue
		}
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			n := 6
			w := rme.Width(16)
			if alg.Name() == "qword" {
				w = 64
			}
			for seed := int64(0); seed < 10; seed++ {
				s, err := rme.NewSession(rme.Config{
					Procs: n, Width: w, Model: rme.CC, Algorithm: alg, Passes: 2, NoTrace: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				err = s.RunRandom(seed, rme.RandomRunOptions{CrashProb: 0.05, MaxCrashesPerProc: 2})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				s.Close()
			}
		})
	}
}
